// Differential guarantee of the event-queue swap, checked at the public
// surface: the calendar queue (the default) and the heap fallback must
// produce identical runs — not just the same aggregates, but the same
// event stream, packet for packet. Two scenarios pin it: the seed-1
// macro run that every other determinism test anchors on, and a faulted
// 3-hop parking lot where outages, corruption, duplication, and
// reordering all land inside batched busy periods.
//
// These tests are the "queue smoke" the Makefile's ci target runs (see
// the queue-smoke target); keep their names on the TestCalendarVsHeap
// prefix so the -run pattern catches them.
package slowcc_test

import (
	"testing"

	"slowcc"
)

// queueMacroRun executes the slowccbench macro scenario (two standard
// TCP flows, 10 Mbps, 30 s, seed 1) on an engine with the given queue
// kind and returns the engine plus the bottleneck packet trace.
func queueMacroRun(t *testing.T, kind slowcc.QueueKind) (*slowcc.Engine, []slowcc.TraceEvent) {
	t.Helper()
	eng := slowcc.NewEngineWithQueue(1, kind)
	d := slowcc.NewDumbbell(eng, slowcc.DumbbellConfig{Rate: 10e6, Seed: 1})
	rec := &slowcc.Tracer{}
	d.LR.AddTap(rec.LinkTap())
	f1 := slowcc.TCP(0.5).Make(eng, d, 1)
	f2 := slowcc.TCP(0.5).Make(eng, d, 2)
	eng.At(0, f1.Sender.Start)
	eng.At(0, f2.Sender.Start)
	eng.RunUntil(30)
	return eng, rec.Events()
}

func TestCalendarVsHeapMacroStream(t *testing.T) {
	const pinnedEvents = 403989

	calEng, calEv := queueMacroRun(t, slowcc.CalendarQueue)
	heapEng, heapEv := queueMacroRun(t, slowcc.HeapQueue)

	if calEng.Steps() != pinnedEvents {
		t.Fatalf("calendar run executed %d events, want the pinned %d", calEng.Steps(), pinnedEvents)
	}
	if heapEng.Steps() != pinnedEvents {
		t.Fatalf("heap run executed %d events, want the pinned %d", heapEng.Steps(), pinnedEvents)
	}
	if len(calEv) != len(heapEv) {
		t.Fatalf("trace lengths differ: calendar %d, heap %d", len(calEv), len(heapEv))
	}
	for i := range calEv {
		if calEv[i] != heapEv[i] {
			t.Fatalf("trace event %d differs: calendar %+v, heap %+v", i, calEv[i], heapEv[i])
		}
	}
}

// faultedChainRun builds a 3-hop parking-lot chain with a fault injector
// on every hop — an outage window plus corruption, duplication, and
// reordering probabilities high enough to land inside batched busy
// periods — runs two TCP flows for 15 s, and returns everything a
// differential comparison needs.
func faultedChainRun(t *testing.T, kind slowcc.QueueKind) (*slowcc.Engine, *slowcc.Net, []*slowcc.FaultInjector, []slowcc.TraceEvent) {
	t.Helper()
	eng := slowcc.NewEngineWithQueue(1, kind)
	hops := make([]slowcc.NetHop, 3)
	var injs []*slowcc.FaultInjector
	for i := range hops {
		inj := slowcc.NewFaultInjector(eng, slowcc.FaultConfig{
			Seed:         int64(100 + i),
			Windows:      []slowcc.FaultWindow{{At: 4 + float64(i), Dur: 0.5}},
			CorruptProb:  0.01,
			DupProb:      0.01,
			ReorderProb:  0.02,
			ReorderDelay: 0.003,
		})
		hops[i] = slowcc.NetHop{Rate: 10e6, Fault: inj}
		injs = append(injs, inj)
	}
	n := slowcc.NewNet(eng, slowcc.NetConfig{Hops: hops, Seed: 1})
	rec := &slowcc.Tracer{}
	n.Fwd[len(n.Fwd)-1].AddTap(rec.LinkTap())
	f1 := slowcc.TCP(0.5).Make(eng, n, 1)
	f2 := slowcc.TCP(0.5).Make(eng, n, 2)
	eng.At(0, f1.Sender.Start)
	eng.At(0, f2.Sender.Start)
	eng.RunUntil(15)
	return eng, n, injs, rec.Events()
}

func TestCalendarVsHeapFaultedParkingLot(t *testing.T) {
	calEng, calNet, calInjs, calEv := faultedChainRun(t, slowcc.CalendarQueue)
	heapEng, heapNet, heapInjs, heapEv := faultedChainRun(t, slowcc.HeapQueue)

	if calEng.Steps() != heapEng.Steps() {
		t.Fatalf("step counts diverge: calendar %d, heap %d", calEng.Steps(), heapEng.Steps())
	}
	for i := range calInjs {
		if calInjs[i].Stats != heapInjs[i].Stats {
			t.Fatalf("hop %d fault stats diverge: calendar %+v, heap %+v", i, calInjs[i].Stats, heapInjs[i].Stats)
		}
		if calInjs[i].Stats.Corrupted == 0 && calInjs[i].Stats.Reordered == 0 {
			t.Fatalf("hop %d injector inflicted nothing; the differential is not exercising faults", i)
		}
	}
	for i := range calNet.Fwd {
		if calNet.Fwd[i].Stats != heapNet.Fwd[i].Stats {
			t.Fatalf("hop %d forward link stats diverge: calendar %+v, heap %+v", i, calNet.Fwd[i].Stats, heapNet.Fwd[i].Stats)
		}
		if calNet.Rev[i].Stats != heapNet.Rev[i].Stats {
			t.Fatalf("hop %d reverse link stats diverge: calendar %+v, heap %+v", i, calNet.Rev[i].Stats, heapNet.Rev[i].Stats)
		}
	}
	if len(calEv) != len(heapEv) {
		t.Fatalf("trace lengths differ: calendar %d, heap %d", len(calEv), len(heapEv))
	}
	for i := range calEv {
		if calEv[i] != heapEv[i] {
			t.Fatalf("trace event %d differs: calendar %+v, heap %+v", i, calEv[i], heapEv[i])
		}
	}
	// The faulted run must actually have taken links down: three hops,
	// one window each, two transitions per window.
	for i := range calNet.Fwd {
		if calNet.Fwd[i].Transitions != 2 {
			t.Fatalf("hop %d saw %d transitions, want 2", i, calNet.Fwd[i].Transitions)
		}
	}
}
