GO ?= go

.PHONY: ci vet build test race bench bench-smoke bench-json report-smoke fuzz-smoke matrix-smoke timeline-smoke queue-smoke export-smoke resume-smoke

# ci is the gate future PRs run: static checks, a full build, the
# complete test suite under the race detector, and a single-iteration
# run of the core macro-benchmark so the allocation-free hot path at
# least executes on every change. The exp package's TestMain enables
# the invariant auditing layer for the whole scaled-down figure suite,
# so packet-accounting regressions fail here even when no figure-level
# assertion notices them; -race additionally exercises parallelMap's
# worker pool.
ci: vet build race bench-smoke queue-smoke report-smoke matrix-smoke timeline-smoke export-smoke resume-smoke fuzz-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench smoke-runs every benchmark once; invariants stay disabled so the
# numbers reflect the production configuration.
bench:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...

# bench-smoke runs just the core macro-benchmark once (seconds, not
# minutes) — a ci step, not a measurement.
bench-smoke:
	$(GO) test -run='^$$' -bench=EnginePacketsPerSecond -benchtime=1x .

# report-smoke exercises the manifest pipeline end to end: a short
# probed slowcctrace run writes a digest-sealed manifest plus probe TSV,
# and slowccreport must verify the digest and render them. Catches
# manifest/report wiring breaks the unit tests can't (flag plumbing,
# file round trips through the real binaries).
report-smoke:
	rm -rf .report-smoke && mkdir -p .report-smoke
	$(GO) run ./cmd/slowcctrace -flow tcp:0.5 -flow tfrc:8 -dur 5 -probe 0.5 \
		-out .report-smoke/trace.tsv -probes .report-smoke/run.probes.tsv \
		-manifest .report-smoke/run.json > /dev/null
	$(GO) run ./cmd/slowccreport -probes .report-smoke/run.probes.tsv .report-smoke/run.json
	rm -rf .report-smoke

# matrix-smoke drives the pairwise interaction matrix end to end through
# the real binary: a 2x2 algorithm subset on a 2-hop parking lot, all
# three conditions, supervised, with -fail-degraded so any degraded cell
# (a panicked or hung sweep attempt) fails ci rather than degrading
# silently, and the TSV artifact + manifest round-trip through disk.
matrix-smoke:
	rm -rf .matrix-smoke && mkdir -p .matrix-smoke
	$(GO) run ./cmd/slowccsim -exp matrix -matrix 'tcp:0.5,tfrc:8' \
		-topology parking-lot:2 -fail-degraded \
		-tsv .matrix-smoke/matrix.tsv -manifest .matrix-smoke/run.json > /dev/null
	test -s .matrix-smoke/matrix.tsv
	rm -rf .matrix-smoke

# timeline-smoke drives the latency-attribution pipeline end to end
# through the real binaries: a journey-enabled slowcctrace run writes a
# Perfetto trace-event timeline and a histogram-carrying manifest, a
# supervised matrix sweep writes its per-cell telemetry timeline, and
# slowccreport must validate both JSON documents and render the
# heatmap from the sweep's TSV artifact.
timeline-smoke:
	rm -rf .timeline-smoke && mkdir -p .timeline-smoke
	$(GO) run ./cmd/slowcctrace -flow tcp:0.5 -flow tfrc:8 -dur 5 -journeys \
		-timeline .timeline-smoke/journeys.json \
		-manifest .timeline-smoke/run.json > /dev/null
	$(GO) run ./cmd/slowccsim -exp matrix -matrix 'tcp:0.5,cbr:3e6' \
		-topology dumbbell -fail-degraded \
		-timeline .timeline-smoke/sweep.json \
		-tsv .timeline-smoke/matrix.tsv > /dev/null
	$(GO) run ./cmd/slowccreport -timeline .timeline-smoke/journeys.json \
		.timeline-smoke/run.json > /dev/null
	$(GO) run ./cmd/slowccreport -timeline .timeline-smoke/sweep.json \
		-heatmap .timeline-smoke/matrix.tsv > /dev/null
	rm -rf .timeline-smoke

# export-smoke drives the live-telemetry stack end to end through the
# real binary: slowccsim -serve runs fig3 with the export server bound
# to an ephemeral port, and the smoke scrapes /healthz, waits for the
# run to finish, scrapes the final /metrics and the full SSE event
# replay, checks a sweep event arrived, shuts the server down with
# SIGTERM (which must exit cleanly), and strict-validates the scraped
# exposition with slowccreport -prom-verify — so a /metrics stream any
# Prometheus scraper would reject fails ci here. The run carries a
# result store so the slowcc_store_{hits,misses,corrupt} counters are
# exercised and validated on the same scrape.
export-smoke:
	rm -rf .export-smoke && mkdir -p .export-smoke
	$(GO) build -o .export-smoke/slowccsim ./cmd/slowccsim
	set -e; \
	.export-smoke/slowccsim -exp fig3 -serve 127.0.0.1:0 -slog warn \
		-store .export-smoke/store \
		> .export-smoke/out.txt 2> .export-smoke/err.txt & \
	pid=$$!; \
	trap 'kill $$pid 2>/dev/null || true' EXIT; \
	addr=""; \
	for i in $$(seq 1 100); do \
		addr=$$(sed -n 's|^serving telemetry on http://\([^/]*\)/.*|\1|p' .export-smoke/err.txt); \
		[ -n "$$addr" ] && break; sleep 0.1; \
	done; \
	[ -n "$$addr" ] || { echo "export-smoke: server never announced an address" >&2; cat .export-smoke/err.txt >&2; exit 1; }; \
	curl -sSf "http://$$addr/healthz" > .export-smoke/health.json; \
	for i in $$(seq 1 200); do \
		curl -sSf "http://$$addr/healthz" | grep -q '"run_done": true' && break; sleep 0.1; \
	done; \
	sleep 0.5; \
	curl -sSf "http://$$addr/metrics" > .export-smoke/metrics.prom; \
	curl -sSf "http://$$addr/progress?replay=close" > .export-smoke/progress.sse; \
	grep -q '^event: sweep' .export-smoke/progress.sse; \
	grep -q '^slowcc_sweep_cells_done_total' .export-smoke/metrics.prom; \
	grep -q '^slowcc_stream_digest_info' .export-smoke/metrics.prom; \
	grep -q '^slowcc_store_hits' .export-smoke/metrics.prom; \
	grep -q '^slowcc_store_misses' .export-smoke/metrics.prom; \
	grep -q '^slowcc_store_corrupt' .export-smoke/metrics.prom; \
	trap - EXIT; \
	kill -TERM $$pid; \
	wait $$pid
	$(GO) run ./cmd/slowccreport -prom-verify .export-smoke/metrics.prom
	rm -rf .export-smoke

# resume-smoke is the crash-safety gate: a real matrix sweep is
# SIGKILLed mid-flight (no graceful handler, no checkpoint — the
# per-entry fsync'd journal is all that survives), then resumed with
# -store -resume, which must serve the already-committed cells from the
# store (hits >= 1 asserted from the summary line) and recompute only
# the rest. The resumed TSV artifact must be byte-identical to an
# uninterrupted same-seed run's — the end-to-end proof that replayed
# cells are indistinguishable from computed ones.
resume-smoke:
	rm -rf .resume-smoke && mkdir -p .resume-smoke
	$(GO) build -o .resume-smoke/slowccsim ./cmd/slowccsim
	.resume-smoke/slowccsim -exp matrix -matrix 'tcp:0.5,tfrc:8,cbr:3e6' \
		-tsv .resume-smoke/full.tsv > /dev/null
	set -e; \
	.resume-smoke/slowccsim -exp matrix -matrix 'tcp:0.5,tfrc:8,cbr:3e6' \
		-store .resume-smoke/store -tsv .resume-smoke/killed.tsv \
		> /dev/null 2>&1 & \
	pid=$$!; \
	for i in $$(seq 1 100); do \
		[ -s .resume-smoke/store/journal.bin ] && break; sleep 0.1; \
	done; \
	[ -s .resume-smoke/store/journal.bin ] || { echo "resume-smoke: no cell committed before the kill" >&2; exit 1; }; \
	kill -9 $$pid; \
	wait $$pid 2>/dev/null || true; \
	.resume-smoke/slowccsim -exp matrix -matrix 'tcp:0.5,tfrc:8,cbr:3e6' \
		-store .resume-smoke/store -resume -tsv .resume-smoke/resumed.tsv \
		> /dev/null 2> .resume-smoke/resume-err.txt; \
	grep -E '^store .*: [0-9]+ entries, [1-9][0-9]* hits' .resume-smoke/resume-err.txt || \
		{ echo "resume-smoke: resume served no cells from the store" >&2; cat .resume-smoke/resume-err.txt >&2; exit 1; }
	cmp .resume-smoke/full.tsv .resume-smoke/resumed.tsv
	rm -rf .resume-smoke

# fuzz-smoke gives each parser fuzz target a few seconds of coverage-
# guided input on every ci run — long enough to re-find shallow
# regressions (the TimedPattern fast-forward hang was one), short enough
# not to dominate the gate. Longer campaigns: raise -fuzztime by hand.
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz=FuzzParsePattern -fuzztime=3s ./internal/netem
	$(GO) test -run='^$$' -fuzz=FuzzParseSpec -fuzztime=3s ./internal/faults

# queue-smoke runs the calendar-vs-heap differential suite: the
# randomized mixed-op oracle test in internal/sim plus the macro-stream
# and faulted-parking-lot differentials at the public surface. Any
# divergence between the default calendar queue and the heap fallback
# fails here with the first diverging event named.
queue-smoke:
	$(GO) test -count=1 -run 'TestCalendarVsHeap' ./internal/sim .

# bench-json measures the simulator core (engine, link, per-flow, and
# the two-flow macro-benchmark), records the trajectory against the
# pre-optimization baseline in BENCH_core.json, and fails if the
# speedup/allocation gates regress. Three interleaved runs per
# benchmark: the minimum is recorded, the min/max spread is reported,
# and a spread above 5% is flagged unstable. Refuses to run from a
# dirty worktree (the record names the commit it measured); pass
# -allow-dirty through `go run ./cmd/slowccbench` by hand for local
# experiments.
bench-json:
	$(GO) run ./cmd/slowccbench -count 3 -out BENCH_core.json
