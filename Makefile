GO ?= go

.PHONY: ci vet build test race bench

# ci is the gate future PRs run: static checks, a full build, and the
# complete test suite under the race detector. The exp package's
# TestMain enables the invariant auditing layer for the whole
# scaled-down figure suite, so packet-accounting regressions fail here
# even when no figure-level assertion notices them; -race additionally
# exercises parallelMap's worker pool.
ci: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench smoke-runs every benchmark once; invariants stay disabled so the
# numbers reflect the production configuration.
bench:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...
