// Determinism guarantee of the fault-injection layer, checked at the
// public surface: a wired-but-disabled injector must not change the
// event stream a seed produces — the same pin the observability layer
// holds in obs_test.go.
package slowcc_test

import (
	"testing"

	"slowcc"
)

// macroRun executes the slowccbench macro scenario (two standard TCP
// flows, 10 Mbps, 30 s, seed 1), optionally with a disabled fault
// injector wired into the dumbbell, and returns the engine plus the
// bottleneck packet trace.
func macroRun(t *testing.T, withInjector bool) (*slowcc.Engine, []slowcc.TraceEvent) {
	t.Helper()
	eng := slowcc.NewEngine(1)
	cfg := slowcc.DumbbellConfig{Rate: 10e6, Seed: 1}
	var inj *slowcc.FaultInjector
	if withInjector {
		inj = slowcc.NewFaultInjector(eng, slowcc.FaultConfig{})
		cfg.Fault = inj
	}
	d := slowcc.NewDumbbell(eng, cfg)
	rec := &slowcc.Tracer{}
	d.LR.AddTap(rec.LinkTap())
	f1 := slowcc.TCP(0.5).Make(eng, d, 1)
	f2 := slowcc.TCP(0.5).Make(eng, d, 2)
	eng.At(0, f1.Sender.Start)
	eng.At(0, f2.Sender.Start)
	eng.RunUntil(30)
	if withInjector && inj.Attached() {
		t.Fatal("disabled injector attached a handler")
	}
	return eng, rec.Events()
}

func TestDisabledFaultInjectorDoesNotPerturbEventStream(t *testing.T) {
	const pinnedEvents = 403989

	plainEng, plainEv := macroRun(t, false)
	wiredEng, wiredEv := macroRun(t, true)

	if plainEng.Steps() != pinnedEvents {
		t.Fatalf("plain run executed %d events, want the pinned %d", plainEng.Steps(), pinnedEvents)
	}
	if wiredEng.Steps() != pinnedEvents {
		t.Fatalf("injector-wired run executed %d events, want the pinned %d: a disabled injector perturbed the schedule",
			wiredEng.Steps(), pinnedEvents)
	}
	if len(plainEv) != len(wiredEv) {
		t.Fatalf("trace lengths differ: %d vs %d", len(plainEv), len(wiredEv))
	}
	for i := range plainEv {
		if plainEv[i] != wiredEv[i] {
			t.Fatalf("trace event %d differs: %+v vs %+v", i, plainEv[i], wiredEv[i])
		}
	}
}

// TestTraceRunFaultSpec checks the CLI-facing path end to end: a "none"
// spec wires nothing and keeps the pinned schedule; an outage spec
// changes the run and records itself in the manifest.
func TestTraceRunFaultSpec(t *testing.T) {
	base := slowcc.TraceRunConfig{
		Seed: 1, Rate: 10e6, Duration: 30,
		Algos: []slowcc.Algorithm{slowcc.TCP(0.5), slowcc.TCP(0.5)},
	}

	none := base
	none.FaultSpec = "none"
	r := slowcc.NewTraceRun(none)
	r.Run()
	if got := r.Eng.Steps(); got != 403989 {
		t.Fatalf("FaultSpec 'none' run executed %d events, want the pinned 403989", got)
	}
	if r.Manifest("t").Config["fault"] != "none" {
		t.Fatal("manifest does not record the fault spec")
	}

	outage := base
	outage.FaultSpec = "down:10+5"
	r2 := slowcc.NewTraceRun(outage)
	r2.Run()
	if r2.Eng.Steps() == 403989 {
		t.Fatal("a 5s bottleneck outage left the event count unchanged")
	}
	if r2.D.LR.Transitions != 2 {
		t.Fatalf("outage run saw %d link transitions, want 2", r2.D.LR.Transitions)
	}

	defer func() {
		if recover() == nil {
			t.Fatal("invalid FaultSpec did not panic")
		}
	}()
	bad := base
	bad.FaultSpec = "corrupt:2"
	slowcc.NewTraceRun(bad)
}
