// Determinism guarantee of the journey layer, checked at the public
// surface: attaching a journey recorder to the seed-1 dumbbell macro
// scenario — recording every per-hop span — must not change the event
// stream at all, because journey hooks observe link callbacks without
// scheduling anything. This is a stronger pin than the other layers
// hold (obs_test.go, faults_test.go, topology_off_test.go): not just
// wired-but-disabled, but fully enabled recording costs zero events.
package slowcc_test

import (
	"math"
	"testing"

	"slowcc"
)

// journeyMacroRun executes the slowccbench macro scenario (two standard
// TCP flows, 10 Mbps, 30 s, seed 1) with an optional journey recorder
// attached before the flows wire, returning the engine, the bottleneck
// packet trace, and the recorder (nil when detached).
func journeyMacroRun(t *testing.T, rec *slowcc.JourneyRecorder) (*slowcc.Engine, []slowcc.TraceEvent) {
	t.Helper()
	eng := slowcc.NewEngine(1)
	d := slowcc.NewDumbbell(eng, slowcc.DumbbellConfig{Rate: 10e6, Seed: 1})
	d.ObserveJourneys(rec)
	tap := &slowcc.Tracer{}
	d.LR.AddTap(tap.LinkTap())
	f1 := slowcc.TCP(0.5).Make(eng, d, 1)
	f2 := slowcc.TCP(0.5).Make(eng, d, 2)
	eng.At(0, f1.Sender.Start)
	eng.At(0, f2.Sender.Start)
	eng.RunUntil(30)
	return eng, tap.Events()
}

func TestJourneyRecordingDoesNotPerturbEventStream(t *testing.T) {
	const pinnedEvents = 403989

	plainEng, plainEv := journeyMacroRun(t, nil)
	rec := slowcc.NewJourneyRecorder()
	journeyEng, journeyEv := journeyMacroRun(t, rec)
	rec.Finalize()

	if plainEng.Steps() != pinnedEvents {
		t.Fatalf("plain run executed %d events, want the pinned %d", plainEng.Steps(), pinnedEvents)
	}
	if journeyEng.Steps() != pinnedEvents {
		t.Fatalf("journey-enabled run executed %d events, want the pinned %d: journey hooks perturbed the schedule",
			journeyEng.Steps(), pinnedEvents)
	}
	if len(plainEv) != len(journeyEv) {
		t.Fatalf("trace lengths differ: %d vs %d", len(plainEv), len(journeyEv))
	}
	for i := range plainEv {
		if plainEv[i] != journeyEv[i] {
			t.Fatalf("trace event %d differs: %+v vs %+v", i, plainEv[i], journeyEv[i])
		}
	}

	// The recorder observed the whole run: its per-hop components must
	// tile the measured end-to-end delay of every delivered packet.
	n, e2e, queue, tx, prop := rec.Attribution()
	if n == 0 {
		t.Fatal("journey recorder saw no end-to-end packets")
	}
	if sum := queue + tx + prop; math.Abs(sum-e2e) > 1e-9*float64(n) {
		t.Fatalf("attribution does not tile: q+tx+prop %v vs e2e %v over %d packets", sum, e2e, n)
	}
}

// Wired but disabled — ObserveJourneys(nil) — is the configuration the
// bench gate measures: every link carries the nil hook field and the
// run must stay on the pinned schedule.
func TestJourneyWiredButDisabledReproducesPinnedMacroRun(t *testing.T) {
	eng, _ := journeyMacroRun(t, nil)
	if got := eng.Steps(); got != 403989 {
		t.Fatalf("wired-but-disabled journey run executed %d events, want the pinned 403989", got)
	}
}
