// Micro-benchmarks for the simulator core. Unlike bench_test.go, which
// benchmarks whole figure scenarios, these isolate one layer each —
// engine, link, and a single endpoint pair — so a performance or
// allocation regression points at the layer that caused it. Companion
// micro-benchmarks live next to their packages:
// internal/sim.BenchmarkEngineEventTurnover (scheduler only) and
// internal/netem.BenchmarkLinkForward (per-packet link path).
// `make bench-json` records all of them in BENCH_core.json.
package slowcc_test

import (
	"testing"

	"slowcc"
)

// flowBench runs one sender/receiver pair of the given algorithm on a
// 10 Mbps dumbbell and measures one simulated second per iteration
// after a warmup, so allocs/op is the steady-state cost of driving the
// whole stack (endpoint + links + queues + timers) for a second.
func flowBench(b *testing.B, algo slowcc.Algorithm) {
	eng := slowcc.NewEngine(1)
	d := slowcc.NewDumbbell(eng, slowcc.DumbbellConfig{Rate: 10e6, Seed: 1})
	f := algo.Make(eng, d, 1)
	eng.At(0, f.Sender.Start)
	eng.RunUntil(5) // past slow start: steady congestion avoidance
	start := eng.Steps()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.RunUntil(eng.Now() + 1)
	}
	b.ReportMetric(float64(eng.Steps()-start)/(b.Elapsed().Seconds()+1e-12), "events/s")
}

func BenchmarkTCPFlowSimSecond(b *testing.B)  { flowBench(b, slowcc.TCP(1)) }
func BenchmarkTFRCFlowSimSecond(b *testing.B) { flowBench(b, slowcc.TFRC(slowcc.TFRCOptions{})) }
