// Package slowcc is a packet-level network simulator and congestion
// control laboratory reproducing "Dynamic Behavior of Slowly-Responsive
// Congestion Control Algorithms" (Bansal, Balakrishnan, Floyd, Shenker —
// SIGCOMM 2001).
//
// It provides, from scratch and in pure Go:
//
//   - a deterministic discrete-event engine (NewEngine);
//   - links, DropTail and RED queues, scripted loss patterns, and a
//     single-bottleneck dumbbell topology (NewDumbbell);
//   - the paper's congestion control algorithms: window-based TCP(b)
//     with self-clocking/slow-start/timeouts, the SQRT and IIAD binomial
//     algorithms, rate-based RAP(b), and equation-based TFRC(k) with the
//     paper's conservative self-clocking option (TCP, SQRT, IIAD, RAP,
//     TFRC);
//   - ON/OFF CBR sources and flash-crowd workloads for dynamic
//     scenarios;
//   - the paper's metrics (stabilization time and cost, delta-fair
//     convergence, f(k) utilization, smoothness); and
//   - one experiment driver per figure of the paper (Fig3 ... Fig20).
//
// The quickest way in:
//
//	eng := slowcc.NewEngine(1)
//	d := slowcc.NewDumbbell(eng, slowcc.DumbbellConfig{Rate: 10e6})
//	tcp := slowcc.TCP(0.5).Make(eng, d, 1)
//	tfrc := slowcc.TFRC(slowcc.TFRCOptions{K: 8}).Make(eng, d, 2)
//	eng.At(0, tcp.Sender.Start)
//	eng.At(0, tfrc.Sender.Start)
//	eng.RunUntil(60)
//	fmt.Println(tcp.RecvBytes(), tfrc.RecvBytes())
//
// The experiment drivers in internal/exp are re-exported here under the
// same names the paper uses; the slowccsim command wraps them all.
package slowcc

import (
	"io"
	"log/slog"

	"slowcc/internal/exp"
	"slowcc/internal/faults"
	"slowcc/internal/metrics"
	"slowcc/internal/netem"
	"slowcc/internal/obs"
	"slowcc/internal/obs/export"
	"slowcc/internal/obs/journey"
	"slowcc/internal/obs/probe"
	"slowcc/internal/sim"
	"slowcc/internal/store"
	"slowcc/internal/topology"
	"slowcc/internal/trace"
)

// Engine is the discrete-event simulation engine. Time is in seconds.
type Engine = sim.Engine

// Time is a simulated timestamp or duration in seconds.
type Time = sim.Time

// NewEngine returns a deterministic engine seeded with seed.
func NewEngine(seed int64) *Engine { return sim.New(seed) }

// QueueKind selects the engine's event-queue implementation. Both kinds
// produce the identical event order for a given seed and schedule; the
// calendar queue is the fast default, the heap the fallback and
// differential-testing oracle.
type QueueKind = sim.QueueKind

const (
	// CalendarQueue is the default time-bucketed event queue.
	CalendarQueue = sim.CalendarQueue
	// HeapQueue is the 4-ary min-heap fallback (also selectable
	// process-wide with SLOWCC_EVENTQ=heap).
	HeapQueue = sim.HeapQueue
)

// NewEngineWithQueue is NewEngine with an explicit event-queue
// implementation, for cross-checking the two queues against each other.
func NewEngineWithQueue(seed int64, kind QueueKind) *Engine {
	return sim.NewWithQueue(seed, kind)
}

// DumbbellConfig configures the single-bottleneck topology; the zero
// value reproduces the paper's defaults (10 Mbps, 50 ms RTT, RED with
// thresholds at 0.25/1.25 BDP, buffer 2.5 BDP).
type DumbbellConfig = topology.Config

// Dumbbell is the instantiated topology.
type Dumbbell = topology.Dumbbell

// NewDumbbell builds a dumbbell on eng.
func NewDumbbell(eng *Engine, cfg DumbbellConfig) *Dumbbell { return topology.New(eng, cfg) }

// ExplicitZero is the sentinel that config fields with a non-zero
// default (bottleneck delay, access delay, RED minimum threshold)
// accept to mean a literal zero rather than "use the default".
const ExplicitZero = topology.ExplicitZero

// Fabric is the topology interface algorithms wire onto: both the
// dumbbell and the parking-lot chain implement it, so a flow never
// knows how many bottlenecks it crosses.
type Fabric = topology.Fabric

// NetConfig configures the parking-lot chain topology: K bottleneck
// hops in series, each with its own rate, delay, and queue discipline,
// plus shared access-link parameters.
type NetConfig = topology.NetConfig

// NetHop describes one bottleneck hop of a parking-lot chain.
type NetHop = topology.Hop

// Net is the instantiated parking-lot chain. Cross traffic can enter
// and leave at interior nodes via PathFwd/PathRev.
type Net = topology.Net

// NewNet builds a parking-lot chain on eng; a one-hop chain is
// equivalent to the dumbbell.
func NewNet(eng *Engine, cfg NetConfig) *Net { return topology.NewNet(eng, cfg) }

// Flow bundles the endpoints of a wired flow.
type Flow = exp.Flow

// Algorithm is a named congestion control algorithm that can wire flows
// onto a dumbbell.
type Algorithm = exp.AlgoSpec

// TFRCOptions tunes the TFRC algorithm.
type TFRCOptions = exp.TFRCOpts

// TCP returns TCP(b): the full TCP machinery with TCP-compatible
// AIMD(b) window rules; TCP(0.5) is standard TCP.
func TCP(b float64) Algorithm { return exp.TCPAlgo(b) }

// SQRT returns the SQRT binomial algorithm with decrease scale b.
func SQRT(b float64) Algorithm { return exp.SQRTAlgo(b) }

// IIAD returns the IIAD binomial algorithm with decrease scale b.
func IIAD(b float64) Algorithm { return exp.IIADAlgo(b) }

// RAP returns the rate-based AIMD algorithm RAP(b).
func RAP(b float64) Algorithm { return exp.RAPAlgo(b) }

// TFRC returns TFRC(k) per the options.
func TFRC(o TFRCOptions) Algorithm { return exp.TFRCAlgo(o) }

// TEAR returns TCP Emulation At Receivers with EWMA gain alpha
// (0 selects the default 0.1).
func TEAR(alpha float64) Algorithm { return exp.TEARAlgo(alpha) }

// ECNTCP returns TCP(b) with ECN enabled; pair it with a dumbbell whose
// DumbbellConfig.ECN is set.
func ECNTCP(b float64) Algorithm { return exp.ECNTCPAlgo(b) }

// Packet is a simulated packet.
type Packet = netem.Packet

// Handler consumes packets.
type Handler = netem.Handler

// DropPattern scripts deterministic losses (see CountPattern and
// TimedPattern in this package).
type DropPattern = netem.DropPattern

// CountPattern drops one packet after every Intervals[i] arrivals,
// cycling.
type CountPattern = netem.CountPattern

// TimedPattern cycles through timed drop phases.
type TimedPattern = netem.TimedPattern

// TimedPhase is one phase of a TimedPattern.
type TimedPhase = netem.TimedPhase

// FaultConfig describes deterministic fault injection at a link:
// outage windows, up/down flapping, and probabilistic corruption,
// duplication, and reordering. The zero value is disabled.
type FaultConfig = faults.Config

// FaultInjector applies a FaultConfig to a link from its own seeded RNG
// stream; wired but disabled it attaches nothing, so the run is
// event-for-event identical to an uninstrumented one.
type FaultInjector = faults.Injector

// FaultWindow is one scheduled outage.
type FaultWindow = faults.Window

// NewFaultInjector returns an injector for eng; pass it as
// DumbbellConfig.Fault. Panics if cfg is invalid (see ParseFaultSpec).
func NewFaultInjector(eng *Engine, cfg FaultConfig) *FaultInjector { return faults.New(eng, cfg) }

// ParseFaultSpec parses the CLI fault syntax, e.g.
// "down:25+5;corrupt:0.001;seed:7" or "none".
func ParseFaultSpec(spec string) (FaultConfig, error) { return faults.ParseSpec(spec) }

// LossMonitor tallies arrivals and drops at a link in time bins.
type LossMonitor = metrics.LossMonitor

// NewLossMonitor returns a monitor with the given bin width; attach its
// Tap to a link.
func NewLossMonitor(width Time) *LossMonitor { return metrics.NewLossMonitor(width) }

// Meter samples a counter periodically into a rate series.
type Meter = metrics.Meter

// NewMeter starts sampling read() every width seconds.
func NewMeter(eng *Engine, width Time, read func() int64) *Meter {
	return metrics.NewMeter(eng, width, read)
}

// Smoothness summarizes rate variability; ComputeSmoothness evaluates a
// series.
type Smoothness = metrics.Smoothness

// ComputeSmoothness evaluates a rate series.
func ComputeSmoothness(rates []float64) Smoothness { return metrics.ComputeSmoothness(rates) }

// Summary holds descriptive statistics of a sample (mean, stddev,
// percentiles, 95% CI) for aggregating multi-seed results.
type Summary = metrics.Summary

// Summarize computes descriptive statistics of a sample.
func Summarize(xs []float64) Summary { return metrics.Summarize(xs) }

// JainIndex returns Jain's fairness index of the given allocations.
func JainIndex(xs []float64) float64 { return metrics.JainIndex(xs) }

// Tracer records per-packet events (sends, receipts, drops, ECN marks)
// and exports them as TSV or binned rate series. Attach LinkTap to a
// link or wrap a handler with WrapHandler.
type Tracer = trace.Recorder

// TraceEvent is one recorded packet event.
type TraceEvent = trace.Event

// TraceOp is a trace event type.
type TraceOp = trace.Op

// Trace event operations.
const (
	TraceSend = trace.Send
	TraceRecv = trace.Recv
	TraceDrop = trace.Drop
	TraceMark = trace.Mark
)

// SACKTCP returns TCP(b) with selective-acknowledgment recovery, the
// closest match to the paper's ns-2 Sack1 agents.
func SACKTCP(b float64) Algorithm { return exp.SACKTCPAlgo(b) }

// CBR returns an unresponsive constant-bit-rate flow at rate bits/s,
// the interaction matrix's baseline competitor.
func CBR(rate float64) Algorithm { return exp.CBRAlgo(rate) }

// ParseAlgo parses the CLI algorithm syntax shared by slowcctrace
// -flow and slowccsim -matrix: name[:arg], e.g. "tcp:0.5", "tfrc:8",
// "tear", "cbr:2.5e6".
func ParseAlgo(spec string) (Algorithm, error) { return exp.ParseAlgoSpec(spec) }

// ParseAlgoList parses a comma-separated list of algorithm specs.
func ParseAlgoList(list string) ([]Algorithm, error) { return exp.ParseAlgoList(list) }

// MatrixConfig drives the N x N pairwise algorithm interaction matrix
// across conditions (static, oscillating, faulted) and topologies
// (dumbbell, parking-lot).
type MatrixConfig = exp.MatrixConfig

// MatrixCell is one duel's outcome in the interaction matrix.
type MatrixCell = exp.MatrixCell

// Matrix runs the pairwise interaction sweep.
func Matrix(cfg MatrixConfig) []MatrixCell { return exp.Matrix(cfg) }

// RenderMatrix renders the human-readable ratio grids.
func RenderMatrix(cfg MatrixConfig, cells []MatrixCell) string { return exp.RenderMatrix(cfg, cells) }

// RenderMatrixTSV renders the deterministic TSV artifact.
func RenderMatrixTSV(cells []MatrixCell) string { return exp.RenderMatrixTSV(cells) }

// Observability layer (internal/obs; see DESIGN.md §9): periodic state
// probes over cc internals, named monotonic counters over the core, a
// flight recorder for post-mortem dumps, and deterministic run
// manifests.

// ProbeVar is one observable scalar exposed by a component.
type ProbeVar = probe.Var

// Sampler snapshots registered probe variables on a fixed simulated
// cadence, piggybacking on the engine's event stream (Install) so
// sampling never changes a run's event sequence.
type Sampler = obs.Sampler

// NewSampler returns a sampler with the given cadence in simulated
// seconds (<= 0 disabled).
func NewSampler(interval Time) *Sampler { return obs.NewSampler(interval) }

// ProbeSample is one probed value.
type ProbeSample = obs.Sample

// CounterRegistry collects named monotonic counters from the simulator
// core; Dumbbell.Observe registers a whole topology.
type CounterRegistry = obs.Registry

// FlightRecorder keeps a fixed ring of recent packet events, probe
// samples, and notes for post-mortem dumps.
type FlightRecorder = obs.FlightRecorder

// NewFlightRecorder returns a recorder retaining the last n records.
func NewFlightRecorder(n int) *FlightRecorder { return obs.NewFlightRecorder(n) }

// Manifest is a deterministic record of one run (config, seed, event
// count, counters, output digests).
type Manifest = obs.Manifest

// ReadManifest parses a manifest file, verifying its digest.
func ReadManifest(path string) (*Manifest, error) { return obs.ReadManifest(path) }

// DigestBytes returns the hex sha256 of b, the hash Manifest.Outputs
// entries use.
func DigestBytes(b []byte) string { return obs.DigestBytes(b) }

// RenderReport renders manifests and probe series into a comparison
// table (the cmd/slowccreport output).
func RenderReport(ms []*Manifest, samples [][]ProbeSample) string {
	return obs.RenderReport(ms, samples)
}

// ReadProbeTSV parses a probe TSV written by Sampler.WriteTSV.
func ReadProbeTSV(r io.Reader) ([]ProbeSample, error) { return obs.ReadSamplesTSV(r) }

// TraceRunConfig describes one ad-hoc traced run (the cmd/slowcctrace
// scenario): a flow mix on the paper's dumbbell with packet tracing,
// optional state probes, and a counter registry.
type TraceRunConfig = exp.TraceRunConfig

// TraceRun is a wired traced scenario; construct with NewTraceRun,
// call Run, then read Rec, Sampler, Registry, and Manifest.
type TraceRun = exp.TraceRun

// NewTraceRun wires a traced scenario without running it.
func NewTraceRun(cfg TraceRunConfig) *TraceRun { return exp.NewTraceRun(cfg) }

// Latency attribution and timeline export (internal/obs/journey and
// internal/obs; see DESIGN.md §12): per-hop packet journeys, HDR-style
// histograms, and Chrome trace-event JSON (Perfetto-loadable)
// timelines.

// JourneyRecorder captures per-packet, per-hop spans (enqueue, head of
// line, transmission, delivery or drop) and attributes every delivered
// packet's end-to-end delay into queueing, transmission, and
// propagation, exactly. Attach one with Dumbbell.ObserveJourneys or
// Net.ObserveJourneys before wiring flows; a nil recorder attaches
// nothing and leaves the run event-for-event identical.
type JourneyRecorder = journey.Recorder

// NewJourneyRecorder returns an empty journey recorder.
func NewJourneyRecorder() *JourneyRecorder { return journey.New() }

// JourneySpan is one packet's residency at one hop.
type JourneySpan = journey.Span

// JourneyHop summarizes one hop's deliveries, drops, and delay
// components.
type JourneyHop = journey.HopSummary

// Histogram is a log-bucketed HDR-style histogram: fixed memory,
// zero-allocation Record, mergeable, with quantiles bounded by bucket
// resolution (12.5%) and exact count/sum/max. The zero value is ready
// to use.
type Histogram = obs.Histogram

// HistogramSummary is a rendered histogram snapshot (count, mean, p50,
// p90, p99, max), the form manifests carry.
type HistogramSummary = obs.HistSummary

// Timeline accumulates Chrome trace-event JSON spans from journey
// recorders (sim time) and sweep supervision (wall time); load the
// written file in Perfetto or chrome://tracing.
type Timeline = obs.Timeline

// NewTimeline returns an empty timeline.
func NewTimeline() *Timeline { return obs.NewTimeline() }

// ValidateTimeline checks a trace-event JSON document and returns its
// event count.
func ValidateTimeline(blob []byte) (int, error) { return obs.ValidateTimeline(blob) }

// ReadTimelineFile validates a timeline JSON file and returns its
// event count.
func ReadTimelineFile(path string) (int, error) { return obs.ReadTimelineFile(path) }

// SetSweepTimeline installs a timeline that supervised sweeps (Matrix,
// the figure drivers) emit per-cell telemetry spans into — queued,
// running, retry, degraded — or nil to remove it. Returns the previous
// timeline.
func SetSweepTimeline(tl *Timeline) (prev *Timeline) { return exp.SetSweepTimeline(tl) }

// ReadTraceTSV parses a packet trace written by Tracer.WriteTSV,
// accepting both the current seven-column (with hop identity) and the
// legacy six-column layout.
func ReadTraceTSV(r io.Reader) ([]TraceEvent, error) { return trace.ReadTSV(r) }

// ParseMatrixTSV parses a RenderMatrixTSV artifact back into cells.
func ParseMatrixTSV(r io.Reader) ([]MatrixCell, error) { return exp.ParseMatrixTSV(r) }

// RenderMatrixHeatmap renders matrix cells as per-topology ASCII
// heatmaps of the chosen metric (see MatrixMetrics).
func RenderMatrixHeatmap(cells []MatrixCell, metric string) (string, error) {
	return exp.RenderMatrixHeatmap(cells, metric)
}

// RenderMatrixHeatmapSVG renders the same grids as a standalone SVG.
func RenderMatrixHeatmapSVG(cells []MatrixCell, metric string) (string, error) {
	return exp.RenderMatrixHeatmapSVG(cells, metric)
}

// MatrixMetrics lists the metrics heatmaps can shade.
func MatrixMetrics() []string { return exp.MatrixMetrics() }

// Live telemetry export (internal/obs/export; see DESIGN.md §14):
// Prometheus text exposition of counters, histograms, and probe gauges,
// an embeddable HTTP server with /metrics, /healthz, an SSE sweep
// progress feed, and pprof, and a rolling digest over the engine's
// executed event stream.

// StreamDigest is a zero-allocation rolling FNV-1a fingerprint of an
// engine's executed event stream: attach with Engine.SetStreamDigest
// (one nil check per event when absent) and compare Sum() across runs —
// equal digests mean the identical event sequence executed in the
// identical order.
type StreamDigest = sim.StreamDigest

// ExportServer serves live run telemetry over HTTP: /metrics
// (Prometheus text exposition v0.0.4), /healthz, /progress (SSE sweep
// cell events), and /debug/pprof. slowccsim -serve wraps it.
type ExportServer = export.Server

// ExportCollector merges per-cell telemetry snapshots (counters,
// histograms, stream digests) into the run-wide families /metrics
// exposes.
type ExportCollector = export.Collector

// ExportProgress fans sweep cell lifecycle events out to SSE
// subscribers and keeps the queued/running/done/degraded counts
// /healthz reports.
type ExportProgress = export.Progress

// NewExportServer wires the full export stack — collector, progress
// sink, HTTP server — and installs the progress sink into supervised
// sweeps. Call Start on the returned server, and SetSweepProgress(nil)
// to detach the sink when done.
func NewExportServer() (*ExportServer, *ExportCollector, *ExportProgress) {
	col := export.NewCollector()
	prog := export.NewProgress(col)
	exp.SetSweepProgress(prog)
	return export.NewServer(col, prog), col, prog
}

// SetSweepProgress installs a sink receiving supervised-sweep lifecycle
// events and per-cell telemetry snapshots (or nil to remove it);
// returns the previous sink. ExportProgress implements the interface.
func SetSweepProgress(sink obs.SweepSink) (prev obs.SweepSink) { return exp.SetSweepProgress(sink) }

// SetSweepLogger installs a structured logger that supervised sweeps
// emit per-attempt records into (or nil to remove it); returns the
// previous logger.
func SetSweepLogger(l *slog.Logger) (prev *slog.Logger) { return exp.SetSweepLogger(l) }

// WritePrometheus renders a counter registry and an optional probe
// sampler as Prometheus text exposition format v0.0.4.
func WritePrometheus(w io.Writer, reg *CounterRegistry, s *Sampler) error {
	return export.WritePrometheus(w, reg, s)
}

// WriteManifestPrometheus renders a sealed run manifest — counters,
// histogram summaries, run metadata — as Prometheus text exposition,
// the cmd/slowccreport -prom path.
func WriteManifestPrometheus(w io.Writer, m *Manifest) error { return export.WriteManifest(w, m) }

// ValidatePrometheus strictly parses Prometheus text exposition format,
// returning the family and sample counts; any type/grammar/duplicate
// violation is an error. CI uses it to gate scraped /metrics output.
func ValidatePrometheus(r io.Reader) (families, samples int, err error) {
	return export.Validate(r)
}

// ResultStore is the durable, crash-safe result store supervised sweeps
// commit finished cells into (slowccsim -store DIR); see internal/store
// and DESIGN.md §15.
type ResultStore = store.Store

// ResultEntry is one stored sweep cell.
type ResultEntry = store.Entry

// OpenStore opens (or creates) a result store directory for reading and
// writing, repairing any torn journal tail left by a crash.
func OpenStore(dir string) (*ResultStore, error) { return store.Open(dir) }

// OpenStoreReadOnly opens a result store for inspection without
// repairing or writing anything (cmd/slowccreport -store).
func OpenStoreReadOnly(dir string) (*ResultStore, error) { return store.OpenReadOnly(dir) }

// SetSweepStore installs the result store supervised sweeps commit
// cells into; with replay true, previously completed cells are served
// from the store instead of recomputed. Returns the previous store.
func SetSweepStore(s *ResultStore, replay bool) (prev *ResultStore) {
	return exp.SetSweepStore(s, replay)
}
