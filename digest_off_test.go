// Differential and observer-purity guarantees of the stream digest,
// checked at the public surface on the pinned seed-1 macro run:
//
//   - the digest is queue-implementation-independent — the calendar
//     queue and the heap fallback fold to the identical fingerprint,
//     which is what lets CI compare two binaries by one hex string
//     instead of two full packet traces; and
//   - attaching a digest is a pure observation — the packet stream of a
//     digested run is bit-identical to an undigested one, so turning
//     the fingerprint on for a production run costs nothing but the
//     fold itself.
//
// The test keeps the TestCalendarVsHeap name prefix so the Makefile's
// queue-smoke -run pattern picks it up.
package slowcc_test

import (
	"testing"

	"slowcc"
)

// digestMacroRun executes the slowccbench macro scenario (two standard
// TCP flows, 10 Mbps, 30 s, seed 1) on the given queue kind, optionally
// with a stream digest attached, and returns the engine, the digest
// (nil when detached), and the bottleneck packet trace.
func digestMacroRun(t *testing.T, kind slowcc.QueueKind, attach bool) (*slowcc.Engine, *slowcc.StreamDigest, []slowcc.TraceEvent) {
	t.Helper()
	eng := slowcc.NewEngineWithQueue(1, kind)
	var dig *slowcc.StreamDigest
	if attach {
		dig = &slowcc.StreamDigest{}
		eng.SetStreamDigest(dig)
	}
	d := slowcc.NewDumbbell(eng, slowcc.DumbbellConfig{Rate: 10e6, Seed: 1})
	rec := &slowcc.Tracer{}
	d.LR.AddTap(rec.LinkTap())
	f1 := slowcc.TCP(0.5).Make(eng, d, 1)
	f2 := slowcc.TCP(0.5).Make(eng, d, 2)
	eng.At(0, f1.Sender.Start)
	eng.At(0, f2.Sender.Start)
	eng.RunUntil(30)
	return eng, dig, rec.Events()
}

func TestCalendarVsHeapStreamDigest(t *testing.T) {
	const pinnedEvents = 403989

	calEng, calDig, calEv := digestMacroRun(t, slowcc.CalendarQueue, true)
	heapEng, heapDig, heapEv := digestMacroRun(t, slowcc.HeapQueue, true)
	offEng, _, offEv := digestMacroRun(t, slowcc.CalendarQueue, false)

	for _, c := range []struct {
		name string
		eng  *slowcc.Engine
	}{{"calendar", calEng}, {"heap", heapEng}, {"undigested", offEng}} {
		if got := c.eng.Steps(); got != pinnedEvents {
			t.Fatalf("%s run executed %d events, want the pinned %d", c.name, got, pinnedEvents)
		}
	}
	if calDig.Events() != pinnedEvents || heapDig.Events() != pinnedEvents {
		t.Fatalf("digest covered %d/%d events, want every one of the %d",
			calDig.Events(), heapDig.Events(), pinnedEvents)
	}
	if calDig.Sum() != heapDig.Sum() {
		t.Fatalf("stream digests diverge across queue kinds: calendar %016x, heap %016x",
			calDig.Sum(), heapDig.Sum())
	}
	// Attaching the digest must not perturb the run: the digested and
	// undigested packet streams are compared event for event.
	if len(calEv) != len(offEv) || len(heapEv) != len(offEv) {
		t.Fatalf("trace lengths differ: digested %d/%d, undigested %d",
			len(calEv), len(heapEv), len(offEv))
	}
	for i := range offEv {
		if calEv[i] != offEv[i] {
			t.Fatalf("digested run diverged at trace event %d: %+v vs %+v", i, calEv[i], offEv[i])
		}
	}
}
